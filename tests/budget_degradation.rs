//! Integration tests for the degradation ladder: runaway SMT queries must
//! return `Unknown` with a machine-readable reason instead of hanging, and a
//! panicking verification worker must degrade that constraint to
//! "unverified" instead of taking the process down.

use std::time::{Duration, Instant};

use pins::core::{
    build_domains, terminate_constraints, Constraint, ConstraintLabel, DomainConfig, HoleSolver,
    Session, Spec, SpecItem,
};
use pins::ir::parse_expr_in;
use pins::logic::{Sort, TermArena, TermId};
use pins::prelude::StopReason;
use pins::smt::{SmtConfig, SmtResult, SmtSession};
use pins::symexec::SymCtx;

fn int_var(a: &mut TermArena, name: &str) -> TermId {
    let s = a.sym(name);
    a.mk_var(s, 0, Sort::Int)
}

/// A pigeonhole-style runaway: `n` integers in `[0, n-2]`, pairwise
/// distinct. Unsatisfiable, but the proof forces the solver through an
/// exponential branch-and-bound search.
fn pigeonhole(a: &mut TermArena, n: i64) -> Vec<TermId> {
    let lo = a.mk_int(0);
    let hi = a.mk_int(n - 2);
    let vars: Vec<TermId> = (0..n).map(|i| int_var(a, &format!("p{i}"))).collect();
    let mut fs = Vec::new();
    for &v in &vars {
        fs.push(a.mk_ge(v, lo));
        fs.push(a.mk_le(v, hi));
    }
    for i in 0..vars.len() {
        for j in (i + 1)..vars.len() {
            let eq = a.mk_eq(vars[i], vars[j]);
            fs.push(a.mk_not(eq));
        }
    }
    fs
}

/// The tentpole acceptance test: a query the solver cannot finish inside its
/// wall-clock budget answers `Unknown(Deadline)` within 2x the configured
/// deadline — no hang, no panic.
#[test]
fn runaway_query_degrades_to_unknown_deadline_within_twice_the_limit() {
    let deadline = Duration::from_millis(250);
    let config = SmtConfig {
        time_limit: Some(deadline),
        retry_unknown: false, // the 2x bound is on a single attempt
        ..SmtConfig::default()
    };
    let mut session = SmtSession::new(config);
    let mut a = TermArena::new();
    let fs = pigeonhole(&mut a, 12);

    let start = Instant::now();
    let result = session.check_under(&mut a, &fs);
    let elapsed = start.elapsed();

    assert!(
        matches!(result, SmtResult::Unknown(StopReason::Deadline)),
        "{result:?}"
    );
    assert!(
        elapsed < 2 * deadline,
        "answered after {elapsed:?}, limit was {deadline:?}"
    );
    assert_eq!(session.stats.unknown_deadline, 1);
}

/// Cancelling the shared budget from outside stops the same runaway query
/// with `Unknown(Cancelled)`; a pre-cancelled budget returns immediately.
#[test]
fn cancelled_budget_stops_runaway_query() {
    let config = SmtConfig {
        retry_unknown: false,
        ..SmtConfig::default()
    };
    let mut session = SmtSession::new(config);
    let budget = pins::budget::Budget::unlimited();
    session.set_budget(budget.clone());
    budget.cancel();

    let mut a = TermArena::new();
    let fs = pigeonhole(&mut a, 12);
    let start = Instant::now();
    let result = session.check_under(&mut a, &fs);
    assert!(
        matches!(result, SmtResult::Unknown(StopReason::Cancelled)),
        "{result:?}"
    );
    assert!(start.elapsed() < Duration::from_secs(5));
}

/// Synthesize-the-inverse-of-`y := x + 7` session, as in the engine tests.
fn add7_session() -> Session {
    let mut s = Session::from_sources(
        "proc add7(in x: int, out y: int) { y := x + 7; }",
        "proc add7_inv(in y: int, out xI: int) { xI := ?e1; }",
    );
    let c = s.composed.clone();
    s.expr_candidates = vec![
        parse_expr_in(&c, "y + 7").unwrap(),
        parse_expr_in(&c, "y - 7").unwrap(),
        parse_expr_in(&c, "0").unwrap(),
        parse_expr_in(&c, "y").unwrap(),
    ];
    s.spec = Spec {
        items: vec![SpecItem::IntEq {
            input: c.var_by_name("x").unwrap(),
            output: c.var_by_name("xI").unwrap(),
        }],
    };
    s
}

/// Runs `HoleSolver::solve` on the add7 session with one deliberately
/// poisoned constraint (an `Int`-sorted goal, which the SMT encoder panics
/// on) appended, returning the surviving solutions and the panic count.
fn solve_with_poison(workers: usize) -> (Vec<String>, u64) {
    let session = add7_session();
    let domains = build_domains(&session, DomainConfig::default());
    let mut ctx = SymCtx::new(&session.composed);
    let mut constraints = terminate_constraints(&session, &domains, &mut ctx);
    let poison_goal = ctx.arena.mk_int(42); // not a boolean: encoder panics
    constraints.push(Constraint {
        hyps: vec![],
        goal: poison_goal,
        label: ConstraintLabel::SafePath,
    });
    let mut smt = SmtSession::new(SmtConfig::default());
    let mut solver = HoleSolver::new(&domains);
    let sols = solver.solve(
        &mut ctx,
        &session,
        &domains,
        &constraints,
        4,
        &mut smt,
        workers,
    );
    let rendered = sols
        .iter()
        .map(|s| format!("{:?}{:?}", s.exprs, s.preds))
        .collect();
    (rendered, solver.stats.worker_panics)
}

/// Satellite: a constraint whose verification panics is degraded to
/// "unverified" (counted, candidate rejected) in both the serial and the
/// parallel path — and the two paths agree on the surviving solutions.
#[test]
fn panicking_constraint_is_isolated_in_serial_and_parallel_verification() {
    let (serial_sols, serial_panics) = solve_with_poison(1);
    let (parallel_sols, parallel_panics) = solve_with_poison(4);

    assert!(serial_panics >= 1, "serial path must record the panic");
    assert!(parallel_panics >= 1, "parallel path must record the panic");
    assert_eq!(
        serial_sols, parallel_sols,
        "worker isolation must not change the result"
    );
    // the poison constraint mentions no holes, so its (deterministic)
    // failure refutes every candidate: no solution survives
    assert!(serial_sols.is_empty());
}
