//! Integration tests of the solver stack: properties that span the
//! logic/SAT/SMT/symexec crate boundaries.

use std::collections::HashSet;

use pins_prng::SplitMix64;

use pins::ir::{parse_program, run, ExternEnv, Store, Value};
use pins::logic::Sort;
use pins::smt::{SmtConfig, SmtResult, SmtSession};
use pins::symexec::{EmptyFiller, ExploreConfig, Explorer, SymCtx};

/// The symbolic executor and the concrete interpreter agree: a concrete run
/// of a closed program follows exactly one symbolic path, and the model of
/// that path's condition reproduces the run's I/O.
#[test]
fn symbolic_paths_cover_concrete_runs() {
    let src = r#"
proc clampsum(in a: int, in b: int, out s: int) {
  s := a + b;
  if (s < 0) {
    s := 0;
  }
}
"#;
    let p = parse_program(src).unwrap();
    let mut ctx = SymCtx::new(&p);
    let cfg = ExploreConfig {
        check_feasibility: false,
        ..ExploreConfig::default()
    };
    let mut ex = Explorer::new(&p, cfg);
    let paths = ex.enumerate(&mut ctx, &EmptyFiller, 100);
    assert_eq!(paths.len(), 2);

    let mut session = SmtSession::new(SmtConfig::default());
    for (a, b) in [(3i64, 4i64), (-5, 2), (0, 0), (7, -9)] {
        // concrete run
        let mut inputs = Store::new();
        inputs.insert(p.var_by_name("a").unwrap(), Value::Int(a));
        inputs.insert(p.var_by_name("b").unwrap(), Value::Int(b));
        let out = run(&p, &inputs, &ExternEnv::new(), 1000).unwrap();
        let s = out[&p.var_by_name("s").unwrap()].as_int().unwrap();
        // exactly one path condition is satisfiable with these inputs, and
        // it implies the same output
        let mut matching = 0;
        for path in &paths {
            let va = ctx.var_term(p.var_by_name("a").unwrap(), 0);
            let vb = ctx.var_term(p.var_by_name("b").unwrap(), 0);
            let ca = ctx.arena.mk_int(a);
            let cb = ctx.arena.mk_int(b);
            let ea = ctx.arena.mk_eq(va, ca);
            let eb = ctx.arena.mk_eq(vb, cb);
            let mut fs = path.conjuncts.clone();
            fs.push(ea);
            fs.push(eb);
            if let SmtResult::Sat(model) = session.check_under(&mut ctx.arena, &fs) {
                matching += 1;
                let sv = p.var_by_name("s").unwrap();
                let s_final = ctx.var_at(sv, &path.final_vmap);
                assert_eq!(model.eval_int(&ctx.arena, s_final), s);
            }
        }
        assert_eq!(matching, 1, "inputs ({a},{b}) must select exactly one path");
    }
}

#[test]
fn explored_paths_have_models_matching_their_guards() {
    let src = r#"
proc steps(in n: int, out c: int) {
  local i: int;
  assume(n >= 0);
  i := 0; c := 0;
  while (i < n) {
    c := c + 3;
    i := i + 1;
  }
}
"#;
    let p = parse_program(src).unwrap();
    let mut ctx = SymCtx::new(&p);
    let mut avoid = HashSet::new();
    let mut session = SmtSession::new(SmtConfig::default());
    for expected_iters in 0..4i64 {
        let mut ex = Explorer::new(&p, ExploreConfig::default());
        let path = ex.explore_one(&mut ctx, &EmptyFiller, &avoid).unwrap();
        avoid.insert(path.key);
        let SmtResult::Sat(model) = session.check_under(&mut ctx.arena, &path.conjuncts) else {
            panic!("explored path must be satisfiable");
        };
        let n = ctx.var_term(p.var_by_name("n").unwrap(), 0);
        assert_eq!(
            model.eval_int(&ctx.arena, n),
            expected_iters,
            "exit-first exploration yields paths in unrolling order"
        );
    }
}

/// Random straight-line programs: the final path condition's model
/// agrees with concrete interpretation.
#[test]
fn straightline_symbolic_concrete_agreement() {
    let mut rng = SplitMix64::new(0x57AC_0001);
    let cases = if cfg!(feature = "heavy-tests") {
        128
    } else {
        24
    };
    for _ in 0..cases {
        let ops: Vec<(u8, i64)> = (0..rng.gen_index(7) + 1)
            .map(|_| (rng.gen_index(3) as u8, rng.gen_range(-5..5)))
            .collect();
        let mut body = String::new();
        for (op, c) in &ops {
            match op {
                0 => body.push_str(&format!("x := x + {};\n", c.abs())),
                1 => body.push_str(&format!("x := x - {};\n", c.abs())),
                _ => body.push_str(&format!("x := x + x + {};\n", c.abs())),
            }
        }
        let src = format!("proc f(in x0: int, out x: int) {{\n x := x0;\n {body} }}");
        let p = parse_program(&src).unwrap();
        let mut ctx = SymCtx::new(&p);
        let mut ex = Explorer::new(&p, ExploreConfig::default());
        let path = ex
            .explore_one(&mut ctx, &EmptyFiller, &HashSet::new())
            .unwrap();

        let x0 = 3i64;
        let mut inputs = Store::new();
        inputs.insert(p.var_by_name("x0").unwrap(), Value::Int(x0));
        let out = run(&p, &inputs, &ExternEnv::new(), 10_000).unwrap();
        let expect = out[&p.var_by_name("x").unwrap()].as_int().unwrap();

        let tx0 = ctx.var_term(p.var_by_name("x0").unwrap(), 0);
        let c = ctx.arena.mk_int(x0);
        let eq = ctx.arena.mk_eq(tx0, c);
        let mut fs = path.conjuncts.clone();
        fs.push(eq);
        let mut session = SmtSession::new(SmtConfig::default());
        let SmtResult::Sat(model) = session.check_under(&mut ctx.arena, &fs) else {
            panic!("path must be satisfiable")
        };
        let xv = p.var_by_name("x").unwrap();
        let x_final = ctx.var_at(xv, &path.final_vmap);
        assert_eq!(model.eval_int(&ctx.arena, x_final), expect);
    }
}

#[test]
fn array_sort_reasoning_spans_the_stack() {
    // swap two cells twice is the identity, proven by the solver
    let src = r#"
proc swap2(inout A: int[], in i: int, in j: int) {
  local t: int;
  t := A[i];
  A[i] := A[j];
  A[j] := t;
  t := A[i];
  A[i] := A[j];
  A[j] := t;
}
"#;
    let p = parse_program(src).unwrap();
    let mut ctx = SymCtx::new(&p);
    let mut ex = Explorer::new(&p, ExploreConfig::default());
    let path = ex
        .explore_one(&mut ctx, &EmptyFiller, &HashSet::new())
        .unwrap();
    // goal: forall k. A_final[k] = A_0[k]
    let av = p.var_by_name("A").unwrap();
    let a0 = ctx.var_term(av, 0);
    let af = ctx.var_at(av, &path.final_vmap);
    let k = ctx.arena.symbols_mut().fresh("k");
    let bk = ctx.arena.mk_bound(k, Sort::Int);
    let s0 = ctx.arena.mk_sel(a0, bk);
    let sf = ctx.arena.mk_sel(af, bk);
    let eq = ctx.arena.mk_eq(s0, sf);
    let goal = ctx.arena.mk_forall(vec![(k, Sort::Int)], eq);
    let mut session = SmtSession::new(SmtConfig::default());
    assert!(session.entails(&mut ctx.arena, &path.conjuncts, goal));
}
