//! Regression pins for solver defects surfaced by `pins-fuzz` differential
//! fuzzing, plus hand-built adversarial inputs the generators are known to
//! reach only rarely.
//!
//! Each pinned tape is a replayable fuzz artifact (`pins-fuzz --oracle NAME
//! --tape HEX` reproduces it from the command line). They are kept verbatim:
//! a tape re-generates the exact formula that exposed the original bug, so
//! these tests fail loudly if any of the fixes regress.

use pins::fuzz::eval::check_model;
use pins::fuzz::{fuzz_smt_config, run_oracle, Decisions, OracleKind, Tape};
use pins::logic::{Sort, TermArena, TermId};
use pins::smt::{Smt, SmtResult};

fn assert_tape_clean(oracle: OracleKind, tape_hex: &str) {
    let tape = Tape::from_hex(tape_hex).expect("pinned tape must parse");
    let mut d = Decisions::replay(&tape);
    let out = run_oracle(oracle, &mut d);
    assert!(
        out.violations.is_empty(),
        "pinned tape regressed ({}): {:?}",
        out.detail,
        out.violations
    );
}

// ---------------------------------------------------------------------------
// pinned fuzz findings
// ---------------------------------------------------------------------------

/// Finding 1: nonlinear products are opaque LIA atoms with no product
/// axioms, and the solver used to return `Sat { complete: true }` with
/// `x0 = 0` yet `x0 * x0 = i64::MAX` for `i64::MAX <= x0 + x0*x0`. Models
/// whose nonlinear atoms contradict the actual product must not claim
/// completeness.
#[test]
fn nonlinear_product_model_is_not_claimed_complete() {
    assert_tape_clean(
        OracleKind::ModelEval,
        "0.0.0.0.0.0.3.2.5.1.1.0.1.0.0.0.0.0.0.0.0.0.0.0.0.0.2.1.0.4.1.0.0.1.0.0",
    );
}

/// Finding 2: `f(x0)` with `x0 = 2` was never merged with `f(2)` — integer
/// constants are folded away by linearization, so model-based theory
/// combination skipped them and the model interpreted `f` inconsistently at
/// the same argument value.
#[test]
fn constant_argument_euf_applications_are_merged() {
    assert_tape_clean(
        OracleKind::ModelEval,
        "0.1.0.1.0.2.3.5.0.2.5.1.0.1.0.1.0.6.0.0.9.5.5.1.0.1.0.1.0.6.0.0.1.2.2.2.0.7.\
         6.5.1.0.0.6.3.0.b.4.0.4.6.2.1.1.3.6.0.1.0.0.7.5.2.0.2.0.5.4.1.0.0",
    );
}

/// Finding 3: the same hole for compound indices — `sel(a, x2 - x1)` with
/// `x2 - x1 = 3` was never merged with `sel(a, 3)`, so the model read two
/// different values from one array cell.
#[test]
fn computed_array_indices_are_merged_with_constant_indices() {
    assert_tape_clean(
        OracleKind::ModelEval,
        "2.1.0.2.1.1.2.3.5.1.0.1.0.0.8.1.3.1.2.1.1.1.1.2.2.3.2.5.0.0.2.6.1.0.0.4.0.0",
    );
}

/// Findings 4–6: further congruence splits over EUF applications whose
/// arguments only coincide through arithmetic (including an i64-boundary
/// variant that must now degrade to `Sat { complete: false }` rather than
/// report a self-contradictory complete model).
#[test]
fn remaining_congruence_findings_stay_clean() {
    for tape in [
        "2.2.0.1.1.3.0.0.0.3.2.0.a.1.7.2.2.1.0.1.1.0.8.4.1.6.0.2.1.1.1.1.3.7.0.0.0.5.\
         6.0.1.1.0.0.5.0.3.2.6.0.1.0.0.0.0.0.0.0.0",
        "1.2.0.1.1.3.3.4.2.7.0.0.6.0.1.1.2.0.7.3.0.0.0.3.4.0.2.3.1.9.0.1.1.0.2.2.4.4.\
         0.5.0.0.0.0.5.2.7.2.6.0.2.1.1.1.0.0.2.0.1.0.3.1.1.1.0.0",
        "0.0.0.0.0.4.1.3.7.0.0.1.0.0.4.5.4.1.0.0.1.0.2.1.0.0.1.5.0.6.0.0.1.1.1.0.6.1.\
         1.0.0.0.0.0.0.1.2.6.1.0.0.5.1.4.1.0.0.1.1.0.1.5.0.4.0.1.1.1.1.0.2.2.6.0.4.1.\
         0.3.3.5.3.6.0.1.0.0.0.0.0",
    ] {
        assert_tape_clean(OracleKind::ModelEval, tape);
    }
}

// ---------------------------------------------------------------------------
// adversarial hand-built cases
// ---------------------------------------------------------------------------

fn check_complete_sat(arena: &TermArena, asserts: &[TermId], result: &SmtResult) {
    if let SmtResult::Sat(m) = result {
        if m.complete {
            let res = check_model(arena, asserts, m);
            assert!(
                res.ok(),
                "complete model fails independent evaluation: falsified={:?} euf={:?}",
                res.falsified,
                res.euf_conflicts
            );
        }
    }
}

/// A deep read-over-write chain: forty nested stores at distinct constant
/// indices, then reads that must resolve through the whole chain. Asserting
/// the correct value is satisfiable; asserting an off-by-one value must be
/// refuted.
#[test]
fn deep_read_over_write_chain_resolves_exactly() {
    const DEPTH: i64 = 40;
    let build = |expected: i64| {
        let mut arena = TermArena::new();
        let a = arena.sym("a");
        let mut chain = arena.mk_var(a, 0, Sort::IntArray);
        for k in 0..DEPTH {
            let i = arena.mk_int(k);
            let v = arena.mk_int(2 * k);
            chain = arena.mk_upd(chain, i, v);
        }
        // index 5 was overwritten at step 5 and never again
        let idx = arena.mk_int(5);
        let read = arena.mk_sel(chain, idx);
        let want = arena.mk_int(expected);
        let eq = arena.mk_eq(read, want);
        (arena, eq)
    };

    let (mut arena, eq) = build(10);
    let mut smt = Smt::new(fuzz_smt_config());
    smt.assert_term(&mut arena, eq);
    let r = smt.check(&mut arena);
    assert!(
        matches!(r, SmtResult::Sat(_)),
        "sel over 40-deep store chain must find the written value: {r:?}"
    );
    check_complete_sat(&arena, &[eq], &r);

    let (mut arena, eq) = build(11);
    let mut smt = Smt::new(fuzz_smt_config());
    smt.assert_term(&mut arena, eq);
    let r = smt.check(&mut arena);
    assert!(
        matches!(r, SmtResult::Unsat),
        "wrong value must be refuted through the whole chain: {r:?}"
    );
}

/// i64-boundary LIA constants: tight satisfiable and unsatisfiable windows
/// at `i64::MAX` / `i64::MIN` must produce correct verdicts (or degrade to
/// `Unknown`), never a wrong definitive answer or a wrapped model value.
#[test]
fn i64_boundary_constants_do_not_wrap() {
    // MAX-1 <= x <= MAX: satisfiable, and any complete model must check out
    let mut arena = TermArena::new();
    let x = arena.sym("x");
    let vx = arena.mk_var(x, 0, Sort::Int);
    let lo = arena.mk_int(i64::MAX - 1);
    let hi = arena.mk_int(i64::MAX);
    let a1 = arena.mk_le(lo, vx);
    let a2 = arena.mk_le(vx, hi);
    let mut smt = Smt::new(fuzz_smt_config());
    smt.assert_term(&mut arena, a1);
    smt.assert_term(&mut arena, a2);
    let r = smt.check(&mut arena);
    assert!(
        !matches!(r, SmtResult::Unsat),
        "[MAX-1, MAX] is non-empty: {r:?}"
    );
    check_complete_sat(&arena, &[a1, a2], &r);

    // MAX <= x < MAX (empty window): must not be satisfiable
    let mut arena = TermArena::new();
    let x = arena.sym("x");
    let vx = arena.mk_var(x, 0, Sort::Int);
    let max = arena.mk_int(i64::MAX);
    let a1 = arena.mk_le(max, vx);
    let a2 = arena.mk_lt(vx, max);
    let mut smt = Smt::new(fuzz_smt_config());
    smt.assert_term(&mut arena, a1);
    smt.assert_term(&mut arena, a2);
    match smt.check(&mut arena) {
        SmtResult::Sat(m) => {
            assert!(!m.complete, "empty window cannot have a complete model");
        }
        SmtResult::Unsat | SmtResult::Unknown(_) => {}
    }

    // x <= MIN and x >= MIN pins x exactly; the model must not saturate away
    let mut arena = TermArena::new();
    let x = arena.sym("x");
    let vx = arena.mk_var(x, 0, Sort::Int);
    let min = arena.mk_int(i64::MIN);
    let a1 = arena.mk_le(vx, min);
    let a2 = arena.mk_le(min, vx);
    let mut smt = Smt::new(fuzz_smt_config());
    smt.assert_term(&mut arena, a1);
    smt.assert_term(&mut arena, a2);
    if let SmtResult::Sat(m) = smt.check(&mut arena) {
        if m.complete {
            assert_eq!(m.ints.get(&vx), Some(&i64::MIN));
        }
    }
}

/// Unit-clause-only CNF: a conjunction of bare boolean literals exercises
/// the propagation-only path of the SAT core (no decisions at all). The
/// model must reproduce every literal, and one flipped duplicate must flip
/// the verdict to Unsat.
#[test]
fn unit_clause_only_cnf_propagates_exactly() {
    let mut arena = TermArena::new();
    let mut asserts = Vec::new();
    let mut vars = Vec::new();
    for i in 0..12u32 {
        let s = arena.sym(&format!("b{i}"));
        let v = arena.mk_var(s, 0, Sort::Bool);
        vars.push(v);
        let lit = if i % 3 == 0 { arena.mk_not(v) } else { v };
        asserts.push(lit);
    }
    let mut smt = Smt::new(fuzz_smt_config());
    for &a in &asserts {
        smt.assert_term(&mut arena, a);
    }
    match smt.check(&mut arena) {
        SmtResult::Sat(m) => {
            for (i, &v) in vars.iter().enumerate() {
                let want = i % 3 != 0;
                assert_eq!(
                    m.bools.get(&v),
                    Some(&want),
                    "unit literal b{i} must be forced to {want}"
                );
            }
            check_model(&arena, &asserts, &m);
        }
        other => panic!("unit-only CNF is satisfiable: {other:?}"),
    }

    // add the negation of one asserted unit: now trivially unsat
    let contra = arena.mk_not(asserts[1]);
    let mut smt = Smt::new(fuzz_smt_config());
    for &a in &asserts {
        smt.assert_term(&mut arena, a);
    }
    smt.assert_term(&mut arena, contra);
    assert!(matches!(smt.check(&mut arena), SmtResult::Unsat));
}

/// Determinism pin: one full generator + oracle round-robin pass over a
/// fixed seed must produce identical outcomes when repeated in-process.
/// (Cross-process determinism is covered by the CI fuzz-smoke job, which
/// compares report bytes across two runs.)
#[test]
fn oracle_replay_is_deterministic_in_process() {
    for oracle in pins::fuzz::ALL_ORACLES {
        let mut rec = Decisions::record(0xfeed_5eed);
        let first = run_oracle(oracle, &mut rec);
        let tape = rec.tape();
        let mut rep = Decisions::replay(&tape);
        let second = run_oracle(oracle, &mut rep);
        assert_eq!(
            first.violations, second.violations,
            "{oracle:?}: replay diverged from recording"
        );
        assert_eq!(first.skipped, second.skipped, "{oracle:?}");
        assert_eq!(first.detail, second.detail, "{oracle:?}");
    }
}
