//! Integration tests for the incremental solver session: parallel
//! constraint verification must be observationally identical to serial
//! solving, the process-wide query cache must actually fire on suite
//! benchmarks, and the one-call `pins::invert` facade works end to end.

use pins::ir::{program_to_string, run, ExternEnv, Store, Value};
use pins::prelude::*;
use pins::suite::{benchmark, BenchmarkId};

fn run_with_workers(id: BenchmarkId, workers: usize) -> PinsOutcome {
    let b = benchmark(id);
    let mut session = b.session();
    let mut config = b.recommended_config();
    config.verify_workers = workers;
    Pins::new(config)
        .run(&mut session)
        .unwrap_or_else(|e| panic!("{}: synthesis failed: {e}", b.name()))
}

/// The observable result of a run: every surviving inverse, pretty-printed,
/// in order. Two runs agree iff these are byte-identical.
fn rendered(outcome: &PinsOutcome) -> Vec<String> {
    outcome
        .solutions
        .iter()
        .map(|s| program_to_string(&s.inverse))
        .collect()
}

fn assert_parallel_matches_serial(id: BenchmarkId) {
    let serial = run_with_workers(id, 1);
    let parallel = run_with_workers(id, 4);
    assert_eq!(
        rendered(&serial),
        rendered(&parallel),
        "{id:?}: parallel verification changed the solution set"
    );
    assert_eq!(
        serial.iterations, parallel.iterations,
        "{id:?}: parallel verification changed the iteration count"
    );
    assert_eq!(serial.stats.verify_workers, 1);
    assert_eq!(parallel.stats.verify_workers, 4);
}

#[test]
fn parallel_matches_serial_on_sum_i() {
    assert_parallel_matches_serial(BenchmarkId::SumI);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "synthesis is slow without optimizations; run with --release"
)]
fn parallel_matches_serial_on_lu_decomp() {
    assert_parallel_matches_serial(BenchmarkId::LuDecomp);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "synthesis is slow without optimizations; run with --release"
)]
fn parallel_matches_serial_on_serialize() {
    assert_parallel_matches_serial(BenchmarkId::Serialize);
}

#[test]
fn repeated_runs_hit_the_query_cache() {
    // the normalized-query cache is process-wide: a second identical run
    // must be answered (at least partly) from it
    let first = run_with_workers(BenchmarkId::SumI, 2);
    let second = run_with_workers(BenchmarkId::SumI, 2);
    assert_eq!(rendered(&first), rendered(&second));
    assert!(
        second.stats.smt_cache_hits > 0,
        "second run saw no cache hits: {:?}",
        second.stats
    );
    assert!(second.stats.smt_cache_misses <= first.stats.smt_cache_misses);
}

#[test]
fn invert_facade_synthesizes_doubling_inverse() {
    let original = r#"
proc dbl(in n: int, out m: int) {
  local i: int;
  assume(n >= 0);
  i := 0; m := 0;
  while (i < n) {
    i := i + 1;
    m := m + 2;
  }
}
"#;
    let template = r#"
proc dbl_inv(in m: int, out nI: int) {
  local mI: int;
  nI := ?e1;
  mI := ?e2;
  while (?p1) {
    nI := ?e3;
    mI := ?e4;
  }
}
"#;
    let outcome = invert(original, template, PinsConfig::default())
        .expect("auto-mined candidates suffice for the doubling inverse");
    assert!(!outcome.solutions.is_empty());

    // at least one surviving inverse must concretely recover n from m = 2n
    let found = outcome.solutions.iter().any(|sol| {
        (0..6i64).all(|n| {
            let m_var = sol.inverse.var_by_name("m").unwrap();
            let n_var = sol.inverse.var_by_name("nI").unwrap();
            let mut inputs = Store::new();
            inputs.insert(m_var, Value::Int(2 * n));
            match run(&sol.inverse, &inputs, &ExternEnv::new(), 10_000) {
                Ok(out) => out[&n_var] == Value::Int(n),
                Err(_) => false,
            }
        })
    });
    assert!(
        found,
        "no surviving inverse recovers n:\n{}",
        program_to_string(&outcome.solutions[0].inverse)
    );
}
