//! Integration tests for the incremental solver session: parallel
//! constraint verification must be observationally identical to serial
//! solving, the process-wide query cache must actually fire on suite
//! benchmarks, and the one-call `pins::invert` facade works end to end.

use pins::ir::{program_to_string, run, ExternEnv, Store, Value};
use pins::prelude::*;
use pins::suite::{benchmark, BenchmarkId};

fn run_with_workers(id: BenchmarkId, workers: usize) -> PinsOutcome {
    let b = benchmark(id);
    let mut session = b.session();
    let mut config = b.recommended_config();
    config.verify_workers = workers;
    Pins::new(config)
        .run(&mut session)
        .unwrap_or_else(|e| panic!("{}: synthesis failed: {e}", b.name()))
}

/// The observable result of a run: every surviving inverse, pretty-printed,
/// in order. Two runs agree iff these are byte-identical.
fn rendered(outcome: &PinsOutcome) -> Vec<String> {
    outcome
        .solutions
        .iter()
        .map(|s| program_to_string(&s.inverse))
        .collect()
}

fn assert_parallel_matches_serial(id: BenchmarkId) {
    let serial = run_with_workers(id, 1);
    let parallel = run_with_workers(id, 4);
    assert_eq!(
        rendered(&serial),
        rendered(&parallel),
        "{id:?}: parallel verification changed the solution set"
    );
    assert_eq!(
        serial.iterations, parallel.iterations,
        "{id:?}: parallel verification changed the iteration count"
    );
    assert_eq!(serial.verify_workers, 1);
    assert_eq!(parallel.verify_workers, 4);
}

#[test]
fn parallel_matches_serial_on_sum_i() {
    assert_parallel_matches_serial(BenchmarkId::SumI);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "synthesis is slow without optimizations; run with --release"
)]
fn parallel_matches_serial_on_lu_decomp() {
    assert_parallel_matches_serial(BenchmarkId::LuDecomp);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "synthesis is slow without optimizations; run with --release"
)]
fn parallel_matches_serial_on_serialize() {
    assert_parallel_matches_serial(BenchmarkId::Serialize);
}

#[test]
fn repeated_runs_hit_the_query_cache() {
    // the normalized-query cache is process-wide: a second identical run
    // must be answered (at least partly) from it
    let first = run_with_workers(BenchmarkId::SumI, 2);
    let second = run_with_workers(BenchmarkId::SumI, 2);
    assert_eq!(rendered(&first), rendered(&second));
    assert!(
        second.smt_cache_hits > 0,
        "second run saw no cache hits: {:?}",
        second.stats()
    );
    assert!(second.smt_cache_misses <= first.smt_cache_misses);
}

#[test]
fn registry_totals_match_typed_stats_in_serial_and_parallel() {
    // the drift check: every counter is bumped at event time through shared
    // registry cells (workers included, via forked sessions), so the
    // registry view must agree exactly with the typed stats that were
    // absorbed from the workers after the fact — in both execution modes
    for workers in [1usize, 4] {
        let outcome = run_with_workers(BenchmarkId::SumI, workers);
        let s = outcome.stats();
        let r = pins::core::PinsStats::from_registry(outcome.metrics());
        assert_eq!(r.smt_queries, s.smt_queries, "workers={workers}");
        assert_eq!(r.smt_cache_hits, s.smt_cache_hits, "workers={workers}");
        assert_eq!(r.smt_cache_misses, s.smt_cache_misses, "workers={workers}");
        assert_eq!(
            r.feasibility_queries, s.feasibility_queries,
            "workers={workers}"
        );
        assert_eq!(r.verify_workers, s.verify_workers, "workers={workers}");
        assert_eq!(r.worker_panics, s.worker_panics, "workers={workers}");
        assert_eq!(r.sat_size, s.sat_size, "workers={workers}");
        assert_eq!(
            r.worker_queries.iter().sum::<u64>(),
            s.worker_queries.iter().sum::<u64>(),
            "workers={workers}"
        );
        // session-level invariant: every query is either a hit or a miss,
        // with no worker traffic lost or double-counted in the merge
        let sess = pins::smt::SessionStats::from_registry(outcome.metrics(), "smt");
        assert_eq!(
            sess.cache_hits + sess.cache_misses,
            sess.queries,
            "workers={workers}"
        );
        assert_eq!(sess.cache_hits, s.smt_cache_hits, "workers={workers}");
        assert_eq!(sess.cache_misses, s.smt_cache_misses, "workers={workers}");
    }
}

#[test]
fn query_latency_histogram_counts_every_query_across_worker_forks() {
    // the `smt.query_ns` histogram lives in shared cells that forked worker
    // sessions write through, so its population must equal the query count
    // in both execution modes — nothing lost or double-counted in the merge
    for workers in [1usize, 4] {
        let outcome = run_with_workers(BenchmarkId::SumI, workers);
        let sess = pins::smt::SessionStats::from_registry(outcome.metrics(), "smt");
        let lat = outcome.metrics().histogram_snapshot("smt.query_ns");
        assert_eq!(
            lat.count(),
            sess.queries,
            "workers={workers}: one latency sample per query"
        );
        assert!(lat.p50() <= lat.p90() && lat.p90() <= lat.p99());
        // per-phase duration counters partition the same population
        let by_phase: u64 = pins::trace::PHASES
            .iter()
            .map(|p| pins::smt::SessionStats::phase_queries(outcome.metrics(), "smt", *p))
            .sum();
        assert_eq!(by_phase, sess.queries, "workers={workers}");
    }
}

#[test]
fn histogram_merge_is_identical_serial_vs_forked_threads() {
    // merge semantics, deterministically: the same sample population must
    // produce bit-identical snapshots whether recorded through one handle
    // or through clones on racing threads (the fork()-shared-cells model)
    let samples: Vec<u64> = (0..4096u64).map(|i| (i * i * 2654435761) >> 16).collect();
    let serial = pins::trace::Histogram::detached();
    for &s in &samples {
        serial.record(s);
    }

    let registry = pins::trace::MetricsRegistry::new();
    let shared = registry.histogram("merge.test_ns");
    let threads: Vec<_> = samples
        .chunks(1024)
        .map(|chunk| {
            let handle = shared.clone(); // what SmtSession::fork does
            let chunk = chunk.to_vec();
            std::thread::spawn(move || {
                for s in chunk {
                    handle.record(s);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let a = serial.snapshot();
    let b = registry.histogram_snapshot("merge.test_ns");
    assert_eq!(a.buckets, b.buckets, "merged buckets must be identical");
    assert_eq!(a.count(), b.count());
    assert_eq!((a.p50(), a.p90(), a.p99()), (b.p50(), b.p90(), b.p99()));

    // absorbing disjoint histograms is equivalent to sharing cells
    let absorbed = pins::trace::Histogram::detached();
    for chunk in samples.chunks(1024) {
        let part = pins::trace::Histogram::detached();
        for &s in chunk {
            part.record(s);
        }
        absorbed.absorb(&part);
    }
    assert_eq!(absorbed.snapshot().buckets, a.buckets);
}

#[test]
fn cache_counters_partition_queries_under_fuzz_load() {
    // adversarial load: a few hundred fuzz-generated formulas, each queried
    // as a growing assumption prefix, the whole batch repeated once, and a
    // forked worker replaying a slice concurrently. Every query must land in
    // exactly one of {hit, miss} — the partition may not drift under
    // generated (rather than benchmark-shaped) traffic.
    use pins::fuzz::genf::{gen_formula, FormulaConfig};
    use pins::fuzz::{fuzz_smt_config, Decisions};
    use pins::smt::{QueryCache, SessionStats};
    use std::sync::Arc;

    let registry = MetricsRegistry::new();
    let cache = Arc::new(QueryCache::new());
    let mut session = SmtSession::with_cache(fuzz_smt_config(), Arc::clone(&cache));
    session.bind_metrics(&registry, "fuzzload");

    let formulas: Vec<_> = (0..60u64)
        .map(|seed| {
            let mut d = Decisions::record(seed);
            gen_formula(&mut d, FormulaConfig::default())
        })
        .collect();

    let mut issued = 0u64;
    for _round in 0..2 {
        for f in &formulas {
            let mut arena = f.arena.clone();
            for end in 1..=f.asserts.len() {
                let _ = session.verdict_under(&mut arena, &f.asserts[..end]);
                issued += 1;
            }
        }
    }

    // a forked worker shares both the cache and the metric cells
    let mut worker = session.fork();
    let worker_issued: u64 = std::thread::spawn(move || {
        let mut n = 0u64;
        for seed in 0..20u64 {
            let mut d = Decisions::record(seed);
            let f = gen_formula(&mut d, FormulaConfig::default());
            let mut arena = f.arena.clone();
            let _ = worker.verdict_under(&mut arena, &f.asserts);
            n += 1;
        }
        n
    })
    .join()
    .expect("worker must not panic");

    let stats = SessionStats::from_registry(&registry, "fuzzload");
    assert_eq!(
        stats.queries,
        issued + worker_issued,
        "every issued query must be counted exactly once"
    );
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        stats.queries,
        "hits and misses must partition the query count exactly"
    );
    // the cache is private to this test, so its own counters must agree
    // with the session view
    assert_eq!(cache.hits(), stats.cache_hits);
    assert_eq!(cache.misses(), stats.cache_misses);
    // the second identical round guarantees repeats actually hit
    assert!(stats.cache_hits > 0, "repeated round saw no cache hits");
}

#[test]
fn invert_facade_synthesizes_doubling_inverse() {
    let original = r#"
proc dbl(in n: int, out m: int) {
  local i: int;
  assume(n >= 0);
  i := 0; m := 0;
  while (i < n) {
    i := i + 1;
    m := m + 2;
  }
}
"#;
    let template = r#"
proc dbl_inv(in m: int, out nI: int) {
  local mI: int;
  nI := ?e1;
  mI := ?e2;
  while (?p1) {
    nI := ?e3;
    mI := ?e4;
  }
}
"#;
    let outcome = invert(original, template, PinsConfig::default())
        .expect("auto-mined candidates suffice for the doubling inverse");
    assert!(!outcome.solutions.is_empty());

    // at least one surviving inverse must concretely recover n from m = 2n
    let found = outcome.solutions.iter().any(|sol| {
        (0..6i64).all(|n| {
            let m_var = sol.inverse.var_by_name("m").unwrap();
            let n_var = sol.inverse.var_by_name("nI").unwrap();
            let mut inputs = Store::new();
            inputs.insert(m_var, Value::Int(2 * n));
            match run(&sol.inverse, &inputs, &ExternEnv::new(), 10_000) {
                Ok(out) => out[&n_var] == Value::Int(n),
                Err(_) => false,
            }
        })
    });
    assert!(
        found,
        "no surviving inverse recovers n:\n{}",
        program_to_string(&outcome.solutions[0].inverse)
    );
}
