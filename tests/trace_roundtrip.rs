//! End-to-end trace test: a full synthesis run streamed through the JSONL
//! recorder must produce a well-formed event log — every line parses, the
//! sequence numbers are strictly increasing, and the spans of every
//! instrumented subsystem show up.

use std::io::Write;
use std::sync::{Arc, Mutex};

use pins::prelude::*;
use pins::suite::{benchmark, BenchmarkId};
use pins::trace::json::{self, Json};
use pins::trace::Recorder;

/// A `Write` sink shared with the test body (the recorder owns its writer).
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn full_run_trace_roundtrips_through_the_parser() {
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let guard = pins::trace::install(Recorder::jsonl(Box::new(buf.clone())));

    let b = benchmark(BenchmarkId::SumI);
    let mut session = b.session();
    let outcome = Pins::new(b.recommended_config())
        .run(&mut session)
        .expect("Σi synthesizes");
    assert!(!outcome.solutions.is_empty());
    drop(guard); // uninstall + flush

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("trace output is UTF-8");
    let mut last_seq = 0.0;
    let mut names: Vec<String> = Vec::new();
    let mut lines = 0usize;
    for line in text.lines() {
        lines += 1;
        let v = json::parse(line).unwrap_or_else(|e| panic!("unparseable event: {e}\n{line}"));
        let seq = v
            .get("seq")
            .and_then(Json::as_num)
            .unwrap_or_else(|| panic!("event without seq: {line}"));
        assert!(seq > last_seq, "seq must be strictly increasing: {line}");
        last_seq = seq;
        assert!(v.get("t_us").and_then(Json::as_num).is_some(), "{line}");
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("event without kind: {line}"));
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("event without name: {line}"));
        names.push(name.to_string());
        if kind == "span_end" {
            assert!(
                v.get("dur_us").and_then(Json::as_num).is_some(),
                "span_end without duration: {line}"
            );
        }
    }
    assert!(lines > 10, "a full run must emit a real event stream");

    // every instrumented layer of the engine path must appear
    for expected in [
        "pins.run",
        "pins.iteration",
        "smt.query",
        "symexec.explore_one",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "no {expected} event in the trace ({lines} events)"
        );
    }
}
