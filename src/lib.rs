//! # PINS — Path-based Inductive Synthesis for Program Inversion
//!
//! A from-scratch Rust reproduction of *"Path-based inductive synthesis for
//! program inversion"* (Srivastava, Gulwani, Chaudhuri, Foster — PLDI 2011).
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`logic`] — sorts, symbols and hash-consed terms;
//! * [`sat`] — a CDCL SAT solver;
//! * [`smt`] — a DPLL(T) SMT solver (EUF + linear integer arithmetic +
//!   arrays + quantified axioms) standing in for Z3;
//! * [`ir`] — the paper's template language: AST, DSL parser, pretty printer
//!   and concrete interpreter;
//! * [`symexec`] — the symbolic executor of Figure 3 (version maps, unknowns);
//! * [`core`] — Algorithm 1: the PINS engine with `terminate`, `safepath`,
//!   `solve`, `stabilized` and the `pickOne` heuristic;
//! * [`mining`] — the semi-automated template mining of Section 3;
//! * [`suite`] — the 14 inversion benchmarks of Section 4;
//! * [`bmc`] — a bounded model checker for validating inverses (CBMC stand-in);
//! * [`cegis`] — a finitized CEGIS baseline (Sketch stand-in).
//!
//! # Quickstart
//!
//! ```
//! use pins::suite::{self, BenchmarkId};
//! use pins::core::{Pins, PinsConfig};
//!
//! // Load the run-length benchmark (program + mined inverse template).
//! let bench = suite::benchmark(BenchmarkId::SumI);
//! let mut session = bench.into_session();
//! let outcome = Pins::new(PinsConfig::default()).run(&mut session).unwrap();
//! assert!(!outcome.solutions.is_empty());
//! ```

pub use pins_bmc as bmc;
pub use pins_cegis as cegis;
pub use pins_core as core;
pub use pins_ir as ir;
pub use pins_logic as logic;
pub use pins_mining as mining;
pub use pins_sat as sat;
pub use pins_smt as smt;
pub use pins_suite as suite;
pub use pins_symexec as symexec;
