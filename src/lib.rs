//! # PINS — Path-based Inductive Synthesis for Program Inversion
//!
//! A from-scratch Rust reproduction of *"Path-based inductive synthesis for
//! program inversion"* (Srivastava, Gulwani, Chaudhuri, Foster — PLDI 2011).
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`budget`] — shared wall-clock/step/cancellation budgets threaded
//!   through every solver layer;
//! * [`logic`] — sorts, symbols and hash-consed terms;
//! * [`sat`] — a CDCL SAT solver;
//! * [`smt`] — a DPLL(T) SMT solver (EUF + linear integer arithmetic +
//!   arrays + quantified axioms) standing in for Z3;
//! * [`ir`] — the paper's template language: AST, DSL parser, pretty printer
//!   and concrete interpreter;
//! * [`symexec`] — the symbolic executor of Figure 3 (version maps, unknowns);
//! * [`core`] — Algorithm 1: the PINS engine with `terminate`, `safepath`,
//!   `solve`, `stabilized` and the `pickOne` heuristic;
//! * [`mining`] — the semi-automated template mining of Section 3;
//! * [`suite`] — the 14 inversion benchmarks of Section 4;
//! * [`bmc`] — a bounded model checker for validating inverses (CBMC stand-in);
//! * [`cegis`] — a finitized CEGIS baseline (Sketch stand-in);
//! * [`trace`] — the structured tracing and metrics layer: install a
//!   [`trace::Recorder`] to stream every solver span and counter as JSON
//!   Lines, or pass a [`trace::MetricsRegistry`] to
//!   [`core::Pins::run_with`] to collect per-phase statistics.
//!
//! # Quickstart
//!
//! ```
//! use pins::suite::{self, BenchmarkId};
//! use pins::core::{Pins, PinsConfig};
//!
//! // Load the run-length benchmark (program + mined inverse template).
//! let bench = suite::benchmark(BenchmarkId::SumI);
//! let mut session = bench.into_session();
//! let outcome = Pins::new(PinsConfig::default()).run(&mut session).unwrap();
//! assert!(!outcome.solutions.is_empty());
//! ```

pub use pins_bmc as bmc;
pub use pins_budget as budget;
pub use pins_cegis as cegis;
pub use pins_core as core;
pub use pins_fuzz as fuzz;
pub use pins_ir as ir;
pub use pins_logic as logic;
pub use pins_mining as mining;
pub use pins_sat as sat;
pub use pins_smt as smt;
pub use pins_suite as suite;
pub use pins_symexec as symexec;
pub use pins_trace as trace;

pub mod prelude {
    //! The types most programs need, in one import.
    //!
    //! ```
    //! use pins::prelude::*;
    //! ```

    pub use pins_budget::{Budget, StopReason};
    pub use pins_core::{
        Pins, PinsConfig, PinsError, PinsOutcome, ResolvedSolution, Session, Solution,
    };
    pub use pins_smt::{SmtConfig, SmtSession};
    pub use pins_trace::{install, span, MetricsRegistry, Recorder};

    pub use crate::invert;
}

use pins_core::{Pins, PinsConfig, PinsError, PinsOutcome, Session, SpecItem};
use pins_mining::mine;

/// One-call program inversion: parses `original_src` and `template_src`,
/// composes them, mines candidate expressions/predicates from the original
/// (Section 3), derives the identity specification, and runs the PINS
/// engine.
///
/// Variable pairing follows the `I`-suffix convention used throughout the
/// benchmark suite: a template variable `vI` reconstructs the original's
/// `v`; template variables whose name matches an original variable are
/// treated as shared. Originals with no `vI` counterpart (loop counters,
/// scratch state) are additionally paired with each same-typed
/// template-only variable, and the candidates mined under every pairing
/// are unioned. The auto-derived spec equates each original `int` or
/// abstract input with its reconstructed counterpart at exit — programs
/// needing array or observational specs should build a [`Session`]
/// explicitly and set `session.spec` themselves.
///
/// # Errors
///
/// Propagates the engine's [`PinsError`] (no solution / budget exhausted).
///
/// # Panics
///
/// Panics on parse errors, like [`Session::from_sources`].
pub fn invert(
    original_src: &str,
    template_src: &str,
    config: PinsConfig,
) -> Result<PinsOutcome, PinsError> {
    let mut session = Session::from_sources(original_src, template_src);

    // base pairing: original `v` reconstructed by template `vI`
    let mut base: Vec<(String, String)> = Vec::new();
    let mut unmatched: Vec<String> = Vec::new();
    for v in &session.original.vars {
        let primed = format!("{}I", v.name);
        if session.composed.var_by_name(&primed).is_some() {
            base.push((v.name.clone(), primed));
        } else {
            unmatched.push(v.name.clone());
        }
    }
    // the template's counter often reconstructs a *differently named*
    // original (the suite's Σi maps its loop counter `i` to the output
    // `nI`), so candidates are mined once per plausible extra pairing of an
    // unmatched original variable with a same-typed template-only variable,
    // and the results unioned
    let inverse_only: Vec<String> = session
        .template
        .vars
        .iter()
        .filter(|v| session.original.var_by_name(&v.name).is_none())
        .map(|v| v.name.clone())
        .collect();
    let mut maps: Vec<Vec<(String, String)>> = vec![base.clone()];
    for v in &unmatched {
        let ty = session
            .original
            .var_by_name(v)
            .map(|id| session.original.var(id).ty.clone());
        for w in &inverse_only {
            let wty = session
                .template
                .var_by_name(w)
                .map(|id| session.template.var(id).ty.clone());
            if ty.is_some() && ty == wty {
                let mut m = base.clone();
                m.push((v.clone(), w.clone()));
                maps.push(m);
            }
        }
    }
    for map in &maps {
        let renamed: std::collections::HashSet<&str> =
            map.iter().map(|(a, _)| a.as_str()).collect();
        // only variables shared with the template (the inverse's own frame,
        // typically the original's outputs) survive un-renamed; candidates
        // mentioning anything else would read leftover original state that a
        // standalone inverse does not have
        let keep: Vec<&str> = session
            .original
            .vars
            .iter()
            .map(|v| v.name.as_str())
            .filter(|n| !renamed.contains(n) && session.template.var_by_name(n).is_some())
            .collect();
        let rename_refs: Vec<(&str, &str)> =
            map.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let mined = mine(&session.original, &session.composed, &rename_refs, &keep);
        for e in mined.exprs {
            if !session.expr_candidates.contains(&e) {
                session.expr_candidates.push(e);
            }
        }
        for p in mined.preds {
            if !session.pred_candidates.contains(&p) {
                session.pred_candidates.push(p);
            }
        }
    }

    for v in session.original.inputs() {
        let name = &session.original.var(v).name;
        let (Some(input), Some(output)) = (
            session.composed.var_by_name(name),
            session.composed.var_by_name(&format!("{name}I")),
        ) else {
            continue;
        };
        let item = match session.original.var(v).ty {
            pins_ir::Type::Int => SpecItem::IntEq { input, output },
            pins_ir::Type::Abstract(_) => SpecItem::AbsEq { input, output },
            pins_ir::Type::IntArray => continue, // needs a length; set explicitly
        };
        session.spec.items.push(item);
    }

    Pins::new(config).run(&mut session)
}
