//! Invert the paper's running example: in-place run-length encoding
//! (Figures 1 and 2 of the PLDI 2011 paper).
//!
//! ```sh
//! cargo run --release --example invert_runlength
//! ```
//!
//! This uses the benchmark suite's curated session — the same candidate
//! sets the paper arrives at after its semi-automated mining loop — runs
//! PINS, validates the result both by concrete round trips and by bounded
//! model checking, and decodes a sample input with the synthesized inverse.

use pins::bmc::{check_inverse, BmcConfig};
use pins::ir::{program_to_string, run, Store, Value};
use pins::prelude::*;
use pins::suite::{benchmark, BenchmarkId};

fn main() {
    let bench = benchmark(BenchmarkId::InPlaceRl);
    let mut session = bench.session();
    println!(
        "original program:\n{}",
        program_to_string(&session.original)
    );

    let mut config = bench.recommended_config();
    config.time_budget = Some(std::time::Duration::from_secs(600));
    let outcome = Pins::new(config)
        .run(&mut session)
        .expect("synthesis succeeds");
    println!(
        "PINS finished after {} iterations / {} paths in {:.2}s with {} solution(s)",
        outcome.iterations,
        outcome.paths_explored,
        outcome.total_time.as_secs_f64(),
        outcome.solutions.len()
    );
    let inverse = &outcome.solutions[0].inverse;
    println!("\nsynthesized decoder:\n{}", program_to_string(inverse));

    // validate: concrete round trips on random workloads
    let mut ok = 0;
    for seed in 0..10 {
        if bench.round_trip(inverse, seed, 6).unwrap_or(false) {
            ok += 1;
        }
    }
    println!("concrete round trips: {ok}/10 pass");

    // validate: bounded model checking (the paper used CBMC with unroll 10,
    // arrays of length <= 4)
    let report = check_inverse(
        &session,
        inverse,
        BmcConfig {
            unroll: 4,
            input_bound: 3,
            ..BmcConfig::default()
        },
    );
    println!(
        "bounded model check: verified={} over {} paths in {:.2}s",
        report.verified,
        report.paths,
        report.time.as_secs_f64()
    );

    // demo: decode a concrete compression
    let env = bench.extern_env();
    let p = &session.original;
    let mut inputs = Store::new();
    let data = [4, 4, 4, 9, 9, 2];
    inputs.insert(p.var_by_name("A").unwrap(), Value::arr_from(&data));
    inputs.insert(p.var_by_name("n").unwrap(), Value::Int(data.len() as i64));
    let mid = run(p, &inputs, &env, 100_000).expect("encoder runs");
    let m = mid[&p.var_by_name("m").unwrap()].as_int().unwrap();
    println!(
        "\nencoded {:?} -> values {:?}, counts {:?}",
        data,
        mid[&p.var_by_name("A").unwrap()].arr_prefix(m).unwrap(),
        mid[&p.var_by_name("N").unwrap()].arr_prefix(m).unwrap()
    );
    let mut inv_inputs = Store::new();
    for name in ["A", "N", "m"] {
        inv_inputs.insert(
            inverse.var_by_name(name).unwrap(),
            mid[&p.var_by_name(name).unwrap()].clone(),
        );
    }
    let out = run(inverse, &inv_inputs, &env, 100_000).expect("decoder runs");
    let n = out[&inverse.var_by_name("iI").unwrap()].as_int().unwrap();
    println!(
        "decoded back -> {:?}",
        out[&inverse.var_by_name("AI").unwrap()]
            .arr_prefix(n)
            .unwrap()
    );
}
