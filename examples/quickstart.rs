//! Quickstart: synthesize the inverse of a small arithmetic program.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the whole PINS pipeline on a toy problem: compose a program
//! with an inverse template, give the engine candidate sets, run Algorithm 1,
//! and print the synthesized inverse with the concrete tests PINS generated
//! from its explored paths.

use pins::core::{Spec, SpecItem};
use pins::ir::{parse_expr_in, parse_pred_in, program_to_string};
use pins::prelude::*;

fn main() {
    // The program to invert: doubling by repeated addition.
    let original = r#"
proc double(in n: int, out m: int) {
  local i: int;
  assume(n >= 0);
  i := 0; m := 0;
  while (i < n) {
    m, i := m + 2, i + 1;
  }
}
"#;
    // The inverse template: same control-flow skeleton, holes for the
    // initialisation, the guard, and the loop body (Section 3 of the paper).
    let template = r#"
proc double_inv(in m: int, out nI: int) {
  local j: int;
  j, nI := ?e1, ?e2;
  while (?p1) {
    nI, j := ?e3, ?e4;
  }
}
"#;
    let mut session = Session::from_sources(original, template);
    let composed = session.composed.clone();

    // Candidate sets Δe and Δp — in a real workflow these come from the
    // template miner (see the `mining_demo` example).
    session.expr_candidates = ["0", "m", "nI + 1", "nI - 1", "j + 2", "j + 1", "j - 2"]
        .iter()
        .map(|src| parse_expr_in(&composed, src).expect("candidate parses"))
        .collect();
    session.pred_candidates = ["j < m", "nI < m", "j < nI"]
        .iter()
        .map(|src| parse_pred_in(&composed, src).expect("candidate parses"))
        .collect();

    // The identity specification: the inverse must reproduce the input n.
    session.spec = Spec {
        items: vec![SpecItem::IntEq {
            input: composed.var_by_name("n").expect("n exists"),
            output: composed.var_by_name("nI").expect("nI exists"),
        }],
    };

    let outcome = Pins::new(PinsConfig::default())
        .run(&mut session)
        .expect("synthesis succeeds");

    println!(
        "synthesized {} inverse(s) in {} iterations over {} paths ({}ms):",
        outcome.solutions.len(),
        outcome.iterations,
        outcome.paths_explored,
        outcome.total_time.as_millis()
    );
    for sol in &outcome.solutions {
        println!("\n{}", program_to_string(&sol.inverse));
    }
    println!("concrete tests generated from the explored paths:");
    for t in &outcome.tests {
        println!("  {:?}", t.inputs);
    }

    // The one-call facade: `pins::invert` mines candidates automatically
    // (Section 3) and derives the identity spec from the `I`-suffix naming
    // convention. Auto-mining is a starting point, not a guarantee — the
    // paper's mining loop is semi-automated for a reason.
    match invert(original, template, PinsConfig::default()) {
        Ok(auto) => println!(
            "\npins::invert with auto-mined candidates: {} solution(s)",
            auto.solutions.len()
        ),
        Err(e) => println!("\npins::invert with auto-mined candidates: {e}"),
    }
}
