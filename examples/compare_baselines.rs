//! PINS versus the finitized-CEGIS baseline (the paper's Sketch
//! comparison, §4.3) on the Σi benchmark, plus bounded model checking of
//! both results.
//!
//! ```sh
//! cargo run --release --example compare_baselines
//! ```

use pins::bmc::{check_inverse, BmcConfig};
use pins::cegis::{synthesize, CegisConfig};
use pins::ir::program_to_string;
use pins::prelude::*;
use pins::suite::{benchmark, BenchmarkId};

fn main() {
    let bench = benchmark(BenchmarkId::SumI);

    // --- PINS: no finitization, solves over unbounded inputs per path ---
    let mut session = bench.session();
    let t0 = std::time::Instant::now();
    let outcome = Pins::new(bench.recommended_config())
        .run(&mut session)
        .expect("PINS succeeds");
    println!(
        "PINS: {} solution(s) in {:.2}s ({} paths explored)",
        outcome.solutions.len(),
        t0.elapsed().as_secs_f64(),
        outcome.paths_explored
    );
    println!("{}", program_to_string(&outcome.solutions[0].inverse));

    // --- CEGIS: requires a bounded input battery, like Sketch's bounds ---
    let env = bench.extern_env();
    let battery: Vec<_> = (0..16)
        .flat_map(|seed| [0usize, 1, 2, 4, 6].map(|size| bench.gen_input(seed, size)))
        .collect();
    let t0 = std::time::Instant::now();
    let report = synthesize(&session, &env, &battery, CegisConfig::default());
    match &report.solution {
        Some(inv) => {
            println!(
                "CEGIS: found in {:.2}s after {} candidates / {} counterexamples",
                t0.elapsed().as_secs_f64(),
                report.candidates_tried,
                report.counterexamples
            );
            println!("{}", program_to_string(inv));
        }
        None => println!(
            "CEGIS: failed ({})",
            report.failure.clone().unwrap_or_default()
        ),
    }

    // --- both validated by the bounded model checker ---
    for (label, inv) in [
        ("PINS", &outcome.solutions[0].inverse),
        (
            "CEGIS",
            report
                .solution
                .as_ref()
                .unwrap_or(&outcome.solutions[0].inverse),
        ),
    ] {
        let r = check_inverse(
            &session,
            inv,
            BmcConfig {
                unroll: 6,
                input_bound: 4,
                ..BmcConfig::default()
            },
        );
        println!(
            "BMC({label}): verified={} over {} paths in {:.2}s",
            r.verified,
            r.paths,
            r.time.as_secs_f64()
        );
    }
}
