//! Template mining (Section 3 of the paper): harvest expressions and
//! predicates from the program to invert, apply the inversion projections,
//! and rename into the inverse's primed frame.
//!
//! ```sh
//! cargo run --release --example mining_demo
//! ```

use pins::ir::{expr_to_string, parse_program, pred_to_string};
use pins::mining::{harvest, mine, project};

fn main() {
    let src = r#"
proc runlength(inout A: int[], in n: int, out N: int[], out m: int) {
  local i: int, r: int;
  assume(n >= 0);
  i := 0; m := 0;
  while (i < n) {
    r := 1;
    while (i + 1 < n && A[i] = A[i + 1]) {
      r, i := r + 1, i + 1;
    }
    A[m] := A[i];
    N[m] := r;
    m, i := m + 1, i + 1;
  }
}
"#;
    let template_src = r#"
proc rl_inv(in A: int[], in N: int[], in m: int, out AI: int[], out iI: int) {
  local mI: int, rI: int;
  iI, mI := ?e1, ?e2;
  while (?p1) {
    rI := ?e3;
    while (?p2) {
      rI, iI, AI := ?e4, ?e5, ?e6;
    }
    mI := ?e7;
  }
}
"#;
    let p = parse_program(src).expect("parses");
    let t = parse_program(template_src).expect("parses");

    // step 1: harvest assignment right-hand sides and guard atoms
    let (exprs, preds) = harvest(&p);
    println!("harvested {} expressions:", exprs.len());
    for e in &exprs {
        println!("  {}", expr_to_string(&p, e));
    }
    println!("harvested {} predicates:", preds.len());
    for q in &preds {
        println!("  {}", pred_to_string(&p, q));
    }

    // step 2: the eight inversion projections
    let (pe, pp) = project(&p, &exprs, &preds);
    println!(
        "\nafter projection: {} expressions, {} predicates",
        pe.len(),
        pp.len()
    );

    // step 3: rename into the decoder's frame; `n` has no counterpart in
    // the decoder, so candidates mentioning it disappear automatically —
    // exactly the paper's observation
    let (composed, _, _) = p.concat(&t);
    let mined = mine(
        &p,
        &composed,
        &[("i", "iI"), ("m", "mI"), ("r", "rI"), ("A", "AI")],
        &["N", "m", "A"],
    );
    println!("\nmined candidate sets over the composed program:");
    println!("Δe ({}):", mined.exprs.len());
    for e in &mined.exprs {
        println!("  {}", expr_to_string(&composed, e));
    }
    println!("Δp ({}):", mined.preds.len());
    for q in &mined.preds {
        println!("  {}", pred_to_string(&composed, q));
    }
}
